// Command spillbench reproduces the paper's evaluation: it runs the
// full pipeline (generate, profile, allocate, place, execute) over the
// synthetic SPEC CPU2000 integer workloads and prints Figure 5 and
// Tables 1-2.
//
// Usage:
//
//	spillbench                    # everything
//	spillbench -figure 5          # just the Figure 5 data
//	spillbench -table 1           # just Table 1 ratios
//	spillbench -table 2           # just Table 2 placement times
//	spillbench -bench gcc         # a single benchmark, detailed
//	spillbench -engine tree       # measure on the legacy VM engine
//	spillbench -json BENCH_vm.json  # benchmark the engines themselves
//	                                # and record the perf trajectory
//	spillbench -machines all        # sweep every machine cost preset:
//	                                # per-machine tables + crossover
//	spillbench -machines all -json BENCH_machines.json
//	                                # record the sweep for the CI gate
//	spillbench -analysis            # benchmark the analysis layer:
//	                                # cold vs shared vs incremental
//	                                # re-placement after an edit
//	spillbench -analysis -json BENCH_analysis.json
//	                                # record it for the CI gate
//	spillbench -json out.json -cpuprofile cpu.pprof
//	                                # engine benchmark under the pprof
//	                                # CPU profiler
//	spillbench -tier                # tiered pipeline benchmark: static
//	                                # estimate placement vs measured
//	                                # re-placement on the hostile suite
//	spillbench -tier -json BENCH_tiered.json
//	                                # record it for the CI gate
//	spillbench -tier -memprofile mem.pprof
//	                                # heap profile of the run, tier
//	                                # boundary recompiles included
//	spillbench -crossover           # crossover suite: uniform vs
//	                                # machine-priced allocation per
//	                                # preset, winner flips reported
//	spillbench -crossover -json BENCH_crossover.json
//	                                # record it for the CI gate
//	spillbench -alloc-machine       # price the allocator's spill
//	                                # choices with the machine preset
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/bench"
	"repro/internal/machine"
	"repro/internal/vm"
	"repro/internal/workload"
)

func main() {
	figure := flag.Int("figure", 0, "print only this figure (5)")
	table := flag.Int("table", 0, "print only this table (1 or 2)")
	only := flag.String("bench", "", "run a single benchmark")
	align := flag.Bool("align", false, "run jump alignment before placement (extension)")
	jobs := flag.Int("j", 0, "worker pool size for sharded evaluation (0 = GOMAXPROCS, 1 = serial)")
	irgenN := flag.Int("irgen", 0, "append this many random irgen scenario families to the suite")
	irgenSeed := flag.Uint64("irgen-seed", 1, "first seed of the appended irgen families")
	engine := flag.String("engine", "bytecode", "VM engine for the measurement runs: bytecode, regcode, or tree")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the measurement run to this file")
	unshared := flag.Bool("unshared", false, "disable the shared per-function analysis cache (A/B reference for Table 2 placement times)")
	jsonOut := flag.String("json", "", "instead of the tables: benchmark both VM engines on the placed suite and write the JSON record here (e.g. BENCH_vm.json); with -machines, write the sweep record instead (e.g. BENCH_machines.json)")
	reps := flag.Int("reps", 3, "with -json: VM executions per benchmark per engine")
	machines := flag.String("machines", "", "sweep these machine cost presets (comma-separated, or \"all\") and print per-machine tables plus the crossover report")
	analysisBench := flag.Bool("analysis", false, "benchmark the analysis layer (cold vs shared vs incremental re-placement); with -json, write the record (e.g. BENCH_analysis.json)")
	tierBench := flag.Bool("tier", false, "benchmark the tiered pipeline (static-estimate placement vs measured re-placement on the estimator-hostile suite); with -json, write the record (e.g. BENCH_tiered.json)")
	quantum := flag.Int64("quantum", 2000, "with -tier: tier-0 step quantum before the measured re-placement")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile of the measurement run to this file")
	crossover := flag.Bool("crossover", false, "run the crossover suite (irgen.Crossover seeds) per preset under both allocation modes and report winner flips; with -json, write the record (e.g. BENCH_crossover.json)")
	allocMachine := flag.Bool("alloc-machine", false, "price the allocator's spill choices with the machine's cost surface instead of uniform weights (single-preset sweeps and the default tables)")
	flag.Parse()

	eng, err := vm.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spillbench: %v\n", err)
		os.Exit(2)
	}

	// The profile brackets the measurement work itself: it starts after
	// flag validation and stops when the chosen mode finishes. Error
	// paths exit without a profile — there is nothing worth profiling in
	// a failed run.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spillbench: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "spillbench: %v\n", err)
			os.Exit(2)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "spillbench: %v\n", err)
			}
		}()
	}

	// The heap profile is written when the chosen mode returns
	// normally, so it captures that mode's allocations — for -tier,
	// the tier-boundary recompiles included. Error paths os.Exit and
	// skip it, same as -cpuprofile.
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "spillbench: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "spillbench: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "spillbench: %v\n", err)
			}
		}()
	}

	suite := func() []bench.Entry {
		var entries []bench.Entry
		for _, p := range workload.SPECInt2000() {
			entries = append(entries, bench.EntryFor(p))
		}
		entries = append(entries, bench.GeneratedSuite(*irgenSeed, *irgenN)...)
		// The filter sees the full suite, so -bench selects generated
		// entries (e.g. "irgen-3") as readily as SPEC stand-ins.
		if *only != "" {
			var filtered []bench.Entry
			for _, e := range entries {
				if e.Name == *only {
					filtered = append(filtered, e)
				}
			}
			if len(filtered) == 0 {
				fmt.Fprintf(os.Stderr, "spillbench: unknown benchmark %q\n", *only)
				os.Exit(1)
			}
			entries = filtered
		}
		return entries
	}

	if *crossover {
		n := *irgenN
		if n <= 0 {
			n = 10
		}
		rec, err := bench.RunCrossover(bench.CrossoverSuite(*irgenSeed, n), machine.Presets(),
			bench.Options{Parallelism: *jobs, Engine: eng})
		if err != nil {
			fmt.Fprintf(os.Stderr, "spillbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%-14s %-14s %-22s %-22s %s\n", "benchmark", "machine", "uniform best", "machine best", "winner")
		for _, b := range rec.Benches {
			for _, row := range b.Presets {
				fmt.Printf("%-14s %-14s %-13s %8d %-13s %8d %s/%s\n",
					b.Name, row.Machine, row.UniformBest, row.UniformOverhead,
					row.MachineBest, row.MachineOverhead, row.WinnerAlloc, row.WinnerStrategy)
			}
			if b.StrategyFlip || b.AllocFlip {
				fmt.Printf("%-14s winner flips across presets (strategy=%v alloc=%v)\n", b.Name, b.StrategyFlip, b.AllocFlip)
			}
		}
		fmt.Printf("%d of %d benchmarks flip their winner across presets\n", rec.Flips, len(rec.Benches))
		if *jsonOut != "" {
			data, err := rec.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "spillbench: %v\n", err)
				os.Exit(1)
			}
			if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "spillbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("recorded in %s\n", *jsonOut)
		}
		return
	}

	if *tierBench {
		n := *irgenN
		if n <= 0 {
			n = 12
		}
		rec, err := bench.BenchTiered(bench.HostileSuite(*irgenSeed, n), *quantum, *reps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spillbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%-14s %12s %12s %8s %6s %9s %14s\n",
			"machine", "static", "tiered", "gain", "bnds", "replaced", "instrs/s")
		for _, m := range rec.Machines {
			fmt.Printf("%-14s %12d %12d %7.3fx %6d %9d %14.0f\n",
				m.Machine, m.StaticOverhead, m.TieredOverhead, m.Gain, m.Boundaries, m.Replaced, m.InstrsPerSec)
		}
		fmt.Printf("best gain %.3fx at quantum %d over %d hostile programs\n",
			rec.BestGain, rec.Quantum, len(rec.Benchmarks))
		if *jsonOut != "" {
			data, err := rec.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "spillbench: %v\n", err)
				os.Exit(1)
			}
			if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "spillbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("recorded in %s\n", *jsonOut)
		}
		return
	}

	if *analysisBench {
		rec, err := bench.BenchAnalysis(workload.SPECInt2000(), *reps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spillbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%-10s %12s %12s %12s\n", "benchmark", "cold", "shared", "incremental")
		for _, r := range rec.Benchmarks {
			fmt.Printf("%-10s %10.3fms %10.3fms %10.3fms\n",
				r.Benchmark, float64(r.ColdNs)/1e6, float64(r.SharedNs)/1e6, float64(r.IncrementalNs)/1e6)
		}
		fmt.Printf("%-10s %10.3fms %10.3fms %10.3fms\n", "Total",
			float64(rec.ColdNs)/1e6, float64(rec.SharedNs)/1e6, float64(rec.IncrementalNs)/1e6)
		fmt.Printf("speedup over cold: shared %.2fx, incremental %.2fx; full-rebuild fallbacks: %d\n",
			rec.SharedSpeedup, rec.IncrementalSpeedup, rec.Rebuilds)
		if *jsonOut != "" {
			data, err := rec.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "spillbench: %v\n", err)
				os.Exit(1)
			}
			if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "spillbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("recorded in %s\n", *jsonOut)
		}
		return
	}

	if *machines != "" {
		descs, err := machine.ParsePresets(*machines)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spillbench: %v\n", err)
			os.Exit(2)
		}
		entries := suite()
		sw, err := bench.RunSweep(entries, descs, bench.Options{Align: *align, Parallelism: *jobs, Engine: eng, MachineAlloc: *allocMachine})
		if err != nil {
			fmt.Fprintf(os.Stderr, "spillbench: %v\n", err)
			os.Exit(1)
		}
		if *jsonOut != "" {
			data, err := sw.Record("SPEC CPU2000 integer stand-ins").JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "spillbench: %v\n", err)
				os.Exit(1)
			}
			if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "spillbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("sweep of %d machines over %d benchmarks recorded in %s\n",
				len(descs), len(entries), *jsonOut)
			return
		}
		fmt.Print(bench.SweepTables(sw))
		return
	}

	if *jsonOut != "" {
		rec, err := bench.BenchVM(workload.SPECInt2000(), *reps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spillbench: %v\n", err)
			os.Exit(1)
		}
		data, err := rec.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "spillbench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "spillbench: %v\n", err)
			os.Exit(1)
		}
		for _, e := range rec.Engines {
			fmt.Printf("%-10s %8.2fms/run %14.0f instrs/s\n",
				e.Engine, e.NSPerRun/1e6, e.InstrsPerSec)
		}
		fmt.Printf("speedup: %.2fx over tree, regcode %.2fx over bytecode (recorded in %s)\n",
			rec.Speedup, rec.RegcodeSpeedup, *jsonOut)
		return
	}

	results, err := bench.RunEntries(suite(), bench.Options{Align: *align, Parallelism: *jobs, Engine: eng, Unshared: *unshared, MachineAlloc: *allocMachine})
	if err != nil {
		fmt.Fprintf(os.Stderr, "spillbench: %v\n", err)
		os.Exit(1)
	}

	switch {
	case *figure == 5:
		fmt.Print(bench.Figure5(results))
	case *table == 1:
		fmt.Print(bench.Table1(results))
	case *table == 2:
		fmt.Print(bench.Table2(results))
	default:
		fmt.Print(bench.Figure5(results))
		fmt.Println()
		fmt.Print(bench.Table1(results))
		fmt.Println()
		fmt.Print(bench.Table2(results))
		fmt.Println()
		fmt.Print(bench.Totals(results))
		if *only != "" {
			fmt.Println()
			for _, r := range results {
				fmt.Printf("%s: %d procedures, %d instructions, %d spilled vregs, result %d\n",
					r.Name, r.Procedures, r.Instrs, r.SpilledVregs, r.ReturnValue)
			}
		}
	}
}
