// Command irrun executes a textual IR program in the interpreter and
// reports dynamic statistics; with -profile it also prints the edge
// execution counts the placement algorithms consume.
//
// Usage:
//
//	irrun [-arg N] [-profile] [-check] [-engine bytecode|regcode|tree] prog.ir
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/ir"
	"repro/internal/irtext"
	"repro/internal/machine"
	"repro/internal/vm"
)

func main() {
	arg := flag.Int64("arg", 0, "argument passed to main")
	prof := flag.Bool("profile", false, "print per-edge execution counts")
	check := flag.Bool("check", false, "enforce the callee-saved register convention")
	engine := flag.String("engine", "bytecode", "execution engine: bytecode, regcode, or tree (the legacy reference)")
	flag.Parse()

	eng, err := vm.ParseEngine(*engine)
	if err != nil {
		fatal(err)
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: irrun [flags] prog.ir")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := irtext.Parse(string(src))
	if err != nil {
		fatal(err)
	}

	cfg := vm.Config{CollectEdges: *prof, Engine: eng}
	if *check {
		cfg.Machine = machine.PARISC()
	}
	m := vm.New(prog, cfg)
	var args []int64
	if f := prog.Func(prog.Main); f != nil && len(f.Params) > 0 {
		args = append(args, *arg)
	}
	val, err := m.Run(args...)
	if err != nil {
		fatal(err)
	}

	st := m.Stats
	fmt.Printf("result: %d\n", val)
	fmt.Printf("instructions: %d  loads: %d  stores: %d\n", st.Instrs, st.Loads, st.Stores)
	fmt.Printf("overhead: %d (spill ld/st %d/%d, save/restore %d/%d, jump-block jumps %d)\n",
		st.Overhead(), st.SpillLoads, st.SpillStores, st.Saves, st.Restores, st.JumpBlockJmps)

	names := make([]string, 0, len(st.Calls))
	for n := range st.Calls {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("calls %-12s %d\n", n, st.Calls[n])
	}

	if *prof {
		for _, f := range prog.FuncsInOrder() {
			fmt.Printf("\nfunc %s:\n", f.Name)
			for _, b := range f.Blocks {
				for _, e := range b.Succs {
					fmt.Printf("  %s -> %s  %d (%v)\n", e.From.Name, e.To.Name, m.EdgeCount[e], kindName(e))
				}
			}
		}
	}
}

func kindName(e *ir.Edge) string {
	if e.Kind == ir.Jump {
		return "jump"
	}
	return "fall"
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "irrun: %v\n", err)
	os.Exit(1)
}
