// Command irrun executes a textual IR program in the interpreter and
// reports dynamic statistics; with -profile it also prints the edge
// execution counts the placement algorithms consume. With -tier the
// program instead goes through the full tiered pipeline — static
// estimate, allocation, tier 0 under the step quantum, measured
// re-alignment and re-placement at the boundary, tier 1 on the result
// — and the report includes the tier boundary details.
//
// Usage:
//
//	irrun [-arg N] [-profile] [-check] [-engine bytecode|regcode|tree] prog.ir
//	irrun -tier [-quantum N] [-machine preset] [-alloc-machine] [-arg N] prog.ir
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro"
	"repro/internal/ir"
	"repro/internal/irtext"
	"repro/internal/machine"
	"repro/internal/vm"
)

func main() {
	arg := flag.Int64("arg", 0, "argument passed to main")
	prof := flag.Bool("profile", false, "print per-edge execution counts")
	check := flag.Bool("check", false, "enforce the callee-saved register convention")
	engine := flag.String("engine", "bytecode", "execution engine: bytecode, regcode, or tree (the legacy reference)")
	tierF := flag.Bool("tier", false, "run the tiered pipeline: estimate, allocate, profile tier 0 for -quantum steps, re-place from the measured weights, finish on tier 1")
	quantum := flag.Int64("quantum", 0, "with -tier: tier-0 step quantum (0 = the pipeline default)")
	mach := flag.String("machine", "", "with -tier: machine cost preset the pipeline optimizes (default: the paper's unit-cost machine)")
	allocMachine := flag.Bool("alloc-machine", false, "with -tier: price the allocator's spill choices with the machine's cost surface (UseMachineAllocation)")
	flag.Parse()

	eng, err := vm.ParseEngine(*engine)
	if err != nil {
		fatal(err)
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: irrun [flags] prog.ir")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	if *tierF {
		runTiered(string(src), *arg, *quantum, *engine, *mach, *allocMachine)
		return
	}
	if *mach != "" || *allocMachine {
		fatal(fmt.Errorf("-machine and -alloc-machine shape the compile pipeline and require -tier (the untiered path executes the program as written)"))
	}

	prog, err := irtext.Parse(string(src))
	if err != nil {
		fatal(err)
	}

	cfg := vm.Config{CollectEdges: *prof, Engine: eng}
	if *check {
		cfg.Machine = machine.PARISC()
	}
	m := vm.New(prog, cfg)
	var args []int64
	if f := prog.Func(prog.Main); f != nil && len(f.Params) > 0 {
		args = append(args, *arg)
	}
	val, err := m.Run(args...)
	if err != nil {
		fatal(err)
	}

	st := m.Stats
	fmt.Printf("result: %d\n", val)
	fmt.Printf("instructions: %d  loads: %d  stores: %d\n", st.Instrs, st.Loads, st.Stores)
	fmt.Printf("overhead: %d (spill ld/st %d/%d, save/restore %d/%d, jump-block jumps %d)\n",
		st.Overhead(), st.SpillLoads, st.SpillStores, st.Saves, st.Restores, st.JumpBlockJmps)

	names := make([]string, 0, len(st.Calls))
	for n := range st.Calls {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("calls %-12s %d\n", n, st.Calls[n])
	}

	if *prof {
		for _, f := range prog.FuncsInOrder() {
			fmt.Printf("\nfunc %s:\n", f.Name)
			for _, b := range f.Blocks {
				for _, e := range b.Succs {
					fmt.Printf("  %s -> %s  %d (%v)\n", e.From.Name, e.To.Name, m.EdgeCount[e], kindName(e))
				}
			}
		}
	}
}

// runTiered drives the spillopt facade's tiered pipeline on the raw
// program and reports the merged statistics plus the tier boundary
// details. The engine flag is honored only when given explicitly, so
// the pipeline's native regcode tier-1 engine stays the default.
func runTiered(src string, arg, quantum int64, engine, mach string, allocMachine bool) {
	p, err := spillopt.ParseProgram(src)
	if err != nil {
		fatal(err)
	}
	if mach != "" {
		if err := p.UseMachine(mach); err != nil {
			fatal(err)
		}
	}
	if allocMachine {
		if err := p.UseMachineAllocation(); err != nil {
			fatal(err)
		}
	}
	engineSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "engine" {
			engineSet = true
		}
	})
	if engineSet {
		if err := p.UseEngine(engine); err != nil {
			fatal(err)
		}
	}
	if err := p.UseTiering(quantum); err != nil {
		fatal(err)
	}
	if err := p.Allocate(); err != nil {
		fatal(err)
	}
	if err := p.Place(spillopt.HierarchicalJump); err != nil {
		fatal(err)
	}
	// Match the untiered path's arity handling: pass -arg only when the
	// entry function takes a parameter.
	raw, err := irtext.Parse(src)
	if err != nil {
		fatal(err)
	}
	var args []int64
	if f := raw.Func(raw.Main); f != nil && len(f.Params) > 0 {
		args = append(args, arg)
	}
	res, err := p.Run(args...)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("result: %d\n", res.Value)
	fmt.Printf("instructions: %d\n", res.Instrs)
	fmt.Printf("overhead: %d cost: %d (spill ld/st %d/%d, save/restore %d/%d, jump-block jumps %d)\n",
		res.Overhead, res.Cost, res.SpillLoads, res.SpillStores, res.Saves, res.Restores, res.JumpBlockJumps)
	if tr := p.TierReport(); tr != nil {
		fmt.Printf("tier: boundary=%v realigned=%d replaced=%d tier0=%d tier1=%d\n",
			tr.Boundary, tr.Realigned, tr.Replaced, tr.Tier0Instrs, tr.Tier1Instrs)
	}
}

func kindName(e *ir.Edge) string {
	if e.Kind == ir.Jump {
		return "jump"
	}
	return "fall"
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "irrun: %v\n", err)
	os.Exit(1)
}
