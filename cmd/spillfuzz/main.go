// Command spillfuzz sweeps seeds through the random program generator
// and the differential strategy-equivalence oracle (internal/irgen):
// every generated program runs all five placement strategies from one
// shared register allocation, and any broken cross-strategy invariant
// is a bug in the pipeline. Failing programs are minimized to small
// .ir reproducers.
//
// Usage:
//
//	spillfuzz -n 1000 -j 8            # sweep 1000 seeds over 8 workers
//	spillfuzz -n 100 -seed 4000      # seeds 4000..4099
//	spillfuzz -small                  # the tiny fuzzing configuration
//	spillfuzz -out dir                # write minimized reproducers here
//	spillfuzz -emit 6 -out testdata   # emit minimized oracle-clean
//	                                  # sample programs instead
//	spillfuzz -parity -engine regcode # engine-vs-tree parity sweep
//	                                  # instead of the strategy oracle
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/irgen"
	"repro/internal/irtext"
	"repro/internal/par"
	"repro/internal/strategy"
	"repro/internal/vm"
)

func main() {
	n := flag.Int("n", 1000, "number of seeds to sweep")
	jobs := flag.Int("j", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
	base := flag.Uint64("seed", 0, "first seed")
	small := flag.Bool("small", false, "use the small (fuzzing) generator configuration")
	out := flag.String("out", "", "directory for minimized .ir reproducers (default: none written)")
	keep := flag.Int("keep", 5, "minimize and write at most this many failures")
	emit := flag.Int("emit", 0, "instead of hunting bugs: emit this many minimized oracle-clean sample programs to -out")
	verbose := flag.Bool("v", false, "log every failing seed as it is found")
	engine := flag.String("engine", "bytecode", "VM engine for the oracle's runs: bytecode, regcode, or tree")
	parity := flag.Bool("parity", false, "instead of the strategy oracle: cross-check the -engine VM engine against the tree interpreter on every seed (raw, step-limited, and placed programs)")
	flag.Parse()

	eng, err := vm.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spillfuzz: %v\n", err)
		os.Exit(2)
	}

	cfg := irgen.Default()
	if *small {
		cfg = irgen.Small()
	}

	if *parity {
		paritySweep(*n, *jobs, *base, cfg, eng, *verbose)
		return
	}

	if *emit > 0 {
		if *out == "" {
			fmt.Fprintln(os.Stderr, "spillfuzz: -emit requires -out")
			os.Exit(2)
		}
		if err := emitSamples(*emit, *base, cfg, *out); err != nil {
			fmt.Fprintf(os.Stderr, "spillfuzz: %v\n", err)
			os.Exit(1)
		}
		return
	}

	start := time.Now()
	type failure struct {
		seed   uint64
		report *irgen.Report
	}
	var mu sync.Mutex
	var failures []failure
	var checked, interesting int
	var dynInstrs int64

	// One analysis cache spans the whole sweep: every seed's five
	// strategies read it, and its counters aggregated over the sweep
	// prove each function's analyses were built once, not per strategy.
	cache := analysis.NewCache()
	_ = par.Do(*n, *jobs, func(i int) error {
		seed := *base + uint64(i)
		prog := irgen.Generate(seed, cfg)
		// Seeds already fan out across the pool; a nested GOMAXPROCS
		// allocation pool per check would only oversubscribe.
		r := irgen.Check(prog, irgen.Options{Args: []int64{int64(seed % 17)}, Parallelism: 1, Engine: eng, Cache: cache})
		mu.Lock()
		defer mu.Unlock()
		checked++
		dynInstrs += r.Instrs
		if r.CalleeSavedFuncs > 0 {
			interesting++
		}
		if r.Failed() {
			failures = append(failures, failure{seed, r})
			if *verbose {
				fmt.Fprintf(os.Stderr, "seed %d: %v\n", seed, r.Violations[0])
			}
		}
		return nil
	})

	sort.Slice(failures, func(i, j int) bool { return failures[i].seed < failures[j].seed })
	fmt.Printf("spillfuzz: %d seeds in %v, %d with callee-saved placement, %d dynamic instrs, %d failures\n",
		checked, time.Since(start).Round(time.Millisecond), interesting, dynInstrs, len(failures))
	hits, misses := cache.Stats()
	c := cache.Counts()
	fmt.Printf("spillfuzz: analysis cache %d hits / %d misses; builds: liveness=%d dom=%d loops=%d pst=%d seed=%d\n",
		hits, misses, c.Liveness, c.Dom, c.Loops, c.PST, c.Seed)

	for i, f := range failures {
		fmt.Printf("seed %d:\n", f.seed)
		for _, v := range f.report.Violations {
			fmt.Printf("  %v\n", v)
		}
		if *out == "" || i >= *keep {
			continue
		}
		path, err := minimize(f.seed, cfg, f.report, *out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spillfuzz: minimize seed %d: %v\n", f.seed, err)
			continue
		}
		fmt.Printf("  reproducer: %s\n", path)
	}
	if len(failures) > 0 {
		os.Exit(1)
	}
}

// paritySweep cross-checks an engine against the tree interpreter on
// every seed: the raw program under several step budgets (small ones
// force mid-quantum halts) plus the hierarchically placed program
// under convention checking. Any observable divergence is a bug in
// one of the engines; the process exits 1 on the first-failing run.
func paritySweep(n, jobs int, base uint64, cfg irgen.Config, eng vm.Engine, verbose bool) {
	start := time.Now()
	budgets := []int64{1, 13, 257, 1 << 22}
	type failure struct {
		seed       uint64
		mismatches []string
	}
	var mu sync.Mutex
	var failures []failure
	checked := 0
	_ = par.Do(n, jobs, func(i int) error {
		seed := base + uint64(i)
		prog := irgen.Generate(seed, cfg)
		ms := irgen.EngineParitySweep(prog, eng, []int64{int64(seed % 17)}, budgets)
		mu.Lock()
		defer mu.Unlock()
		checked++
		if len(ms) > 0 {
			failures = append(failures, failure{seed, ms})
			if verbose {
				fmt.Fprintf(os.Stderr, "seed %d: %s\n", seed, ms[0])
			}
		}
		return nil
	})
	sort.Slice(failures, func(i, j int) bool { return failures[i].seed < failures[j].seed })
	fmt.Printf("spillfuzz: %v-vs-tree parity on %d seeds in %v, %d failures\n",
		eng, checked, time.Since(start).Round(time.Millisecond), len(failures))
	for _, f := range failures {
		fmt.Printf("seed %d:\n", f.seed)
		for _, m := range f.mismatches {
			fmt.Printf("  %s\n", m)
		}
	}
	if len(failures) > 0 {
		os.Exit(1)
	}
}

// minimize shrinks the failing seed's program while the first violated
// invariant keeps failing, and writes the result as an .ir file.
func minimize(seed uint64, cfg irgen.Config, orig *irgen.Report, dir string) (string, error) {
	inv := orig.Violations[0].Invariant
	// Reduce under the sweep's own step budget (the Check default):
	// a lower cap could make the unreduced program fail differently
	// than it did in the sweep, and the "same invariant" predicate
	// would then chase the wrong bug.
	opts := irgen.Options{Args: []int64{int64(seed % 17)}, Parallelism: 1}
	still := func(p *ir.Program) bool {
		for _, v := range irgen.Check(p, opts).Violations {
			if v.Invariant == inv {
				return true
			}
		}
		return false
	}
	red := irgen.Reduce(irgen.Generate(seed, cfg), still, 4)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("fuzz-seed%d.ir", seed))
	header := fmt.Sprintf("# spillfuzz reproducer: seed %d, invariant %q\n# args: %d\n",
		seed, inv, seed%17)
	return path, os.WriteFile(path, []byte(header+irtext.Print(red)), 0o644)
}

// emitSamples generates oracle-clean programs, minimizes them while
// they keep exercising callee-saved placement and staying clean, and
// writes them out — the source of the checked-in testdata programs.
func emitSamples(count int, base uint64, cfg irgen.Config, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	opts := irgen.Options{Args: []int64{40}, MaxSteps: 1 << 22}
	emitted := 0
	for seed := base; emitted < count && seed < base+10000; seed++ {
		prog := irgen.Generate(seed, cfg)
		// Keep programs where the hierarchical placement strictly beats
		// entry/exit: reduction then cannot strip the cold-guarded
		// structure that makes the placement problem interesting.
		keep := func(p *ir.Program) bool {
			rr := irgen.Check(p, opts)
			return !rr.Failed() && rr.CalleeSavedFuncs >= 2 &&
				rr.Overhead[strategy.HierarchicalJump] < rr.Overhead[strategy.EntryExit]
		}
		if !keep(prog) {
			continue
		}
		red := irgen.Reduce(prog, keep, 3)
		path := filepath.Join(dir, fmt.Sprintf("gen_seed%d.ir", seed))
		header := fmt.Sprintf("# irgen sample: seed %d, minimized while keeping >=2 procedures with\n"+
			"# callee-saved placement and a strict hierarchical-jump win over entry/exit.\n# oracle args: 40\n", seed)
		if err := os.WriteFile(path, []byte(header+irtext.Print(red)), 0o644); err != nil {
			return err
		}
		fmt.Printf("emitted %s\n", path)
		emitted++
	}
	if emitted < count {
		return fmt.Errorf("only %d/%d samples found in seed range", emitted, count)
	}
	return nil
}
