// Command spillserve is spill placement as a service: it serves the
// spillopt pipeline over HTTP/JSON (see internal/server) or, with
// -loadgen, stress-drives a service with a generated corpus.
//
// Serve mode:
//
//	spillserve -addr :8080
//	spillserve -addr :8080 -j 4 -analysis-budget 1024 -timeout 30s
//
// Endpoints: POST /v1/place (IR in, placements and priced overhead
// breakdowns out), GET /metrics (live counters), GET /healthz
// (pipeline self-check; non-empty findings → 500). Shutdown is
// graceful: SIGINT/SIGTERM stops accepting and drains in-flight
// requests.
//
// Loadgen mode:
//
//	spillserve -loadgen -distinct 500 -dups 19 -workers 4 -json BENCH_serve.json
//	spillserve -loadgen -target http://localhost:8080 -distinct 100 -dups 9
//
// Without -target the sweep runs against an in-process server (the
// configuration cmd/benchdiff -serve gates); with -target it drives a
// running instance. The sweep submits each of -distinct generated
// programs once cold, -dups times identically (program-cache hits),
// and once function-reordered (function-cache hits), then reports
// per-phase latency and the service-side cache counter deltas.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "serve: listen address")
		jobs        = flag.Int("j", 1, "serve: per-request worker pool size")
		maxBody     = flag.Int64("max-body", 1<<20, "serve: request body limit in bytes (413 beyond)")
		timeout     = flag.Duration("timeout", 15*time.Second, "serve: per-request time limit")
		maxSteps    = flag.Int64("max-steps", 1<<26, "serve: VM step budget per execution")
		progEntries = flag.Int("program-entries", 4096, "serve: program cache entry budget")
		progMB      = flag.Int64("program-mb", 256, "serve: program cache byte budget in MiB")
		funcEntries = flag.Int("function-entries", 65536, "serve: function cache entry budget")
		funcMB      = flag.Int64("function-mb", 64, "serve: function cache byte budget in MiB")
		anaBudget   = flag.Int("analysis-budget", 512, "serve: analysis cache entry budget (LRU eviction beyond)")

		loadgen  = flag.Bool("loadgen", false, "run the loadgen sweep instead of serving")
		target   = flag.String("target", "", "loadgen: base URL of a running service (empty = in-process)")
		distinct = flag.Int("distinct", 500, "loadgen: distinct generated programs")
		dups     = flag.Int("dups", 19, "loadgen: identical resubmissions per program")
		workers  = flag.Int("workers", 4, "loadgen: concurrent client workers")
		seed     = flag.Uint64("seed", 1, "loadgen: corpus base seed")
		jsonOut  = flag.String("json", "", "loadgen: write the BENCH_serve.json record here")
	)
	flag.Parse()

	if *loadgen {
		runLoadgen(*target, *distinct, *dups, *workers, *seed, *jsonOut)
		return
	}

	cfg := server.Config{
		MaxBodyBytes:         *maxBody,
		RequestTimeout:       *timeout,
		MaxVMSteps:           *maxSteps,
		Parallelism:          *jobs,
		ProgramCacheEntries:  *progEntries,
		ProgramCacheBytes:    *progMB << 20,
		FunctionCacheEntries: *funcEntries,
		FunctionCacheBytes:   *funcMB << 20,
		AnalysisBudget:       *anaBudget,
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(cfg).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("spillserve: listening on %s (analysis budget %d, body limit %d bytes)\n",
		*addr, *anaBudget, *maxBody)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case s := <-sig:
		fmt.Printf("spillserve: %v, draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fatal(fmt.Errorf("shutdown: %w", err))
		}
		fmt.Println("spillserve: drained, bye")
	}
}

func runLoadgen(target string, distinct, dups, workers int, seed uint64, jsonOut string) {
	var record *bench.ServeBench
	if target == "" {
		// In-process: exactly the sweep cmd/benchdiff -serve re-runs.
		b, err := server.Bench(distinct, dups, workers)
		if err != nil {
			fatal(err)
		}
		record = b
	} else {
		res, err := server.Loadgen(http.DefaultClient, target, server.LoadgenOptions{
			Distinct: distinct,
			Dups:     dups,
			Workers:  workers,
			Reorder:  true,
			Seed:     seed,
		})
		if err != nil {
			fatal(err)
		}
		record = server.NewRecord(res)
	}

	fmt.Printf("loadgen: %d requests (%d distinct x %d dups + reorder, %d workers, %d functions)\n",
		record.Requests, record.Distinct, record.Dups, record.Workers, record.Functions)
	fmt.Printf("loadgen: cold %.0f ns/req, cached %.0f ns/req, speedup %.2fx\n",
		record.ColdNsPerReq, record.CachedNsPerReq, record.CachedSpeedup)
	fmt.Printf("loadgen: program hits %d, function hits %d, analysis len max %d (budget %d, drops %d)\n",
		record.ProgramHits, record.FunctionHits, record.AnalysisLenMax, record.AnalysisBudget, record.AnalysisDrops)

	if jsonOut != "" {
		data, err := json.MarshalIndent(record, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("loadgen: wrote %s\n", jsonOut)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "spillserve: %v\n", err)
	os.Exit(1)
}
