package spillopt

import (
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestReport: per-function reports exist for every function, carry the
// placement's inserted code, and their modeled totals agree with the
// measured run for a jump-block-free placement (entry/exit).
func TestReport(t *testing.T) {
	p, res := pipeline(t, EntryExit)
	reports, err := p.Report()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(p.Functions()) {
		t.Fatalf("got %d reports for %d functions", len(reports), len(p.Functions()))
	}
	var cost, overhead, saves int64
	var saveInstrs int
	for _, r := range reports {
		cost += r.Cost
		overhead += r.Overhead
		saves += r.Saves
		saveInstrs += r.SaveInstrs
		if r.Overhead != r.Saves+r.Restores+r.SpillLoads+r.SpillStores+r.JumpJumps {
			t.Errorf("%s: overhead breakdown inconsistent: %+v", r.Function, r)
		}
	}
	if saveInstrs == 0 {
		t.Error("no save instructions reported after placement")
	}
	// Entry/exit placement has no jump blocks, so the modeled overhead
	// is exact: it matches the measured run with the profiling args.
	if overhead != res.Overhead || cost != res.Cost {
		t.Errorf("modeled overhead/cost %d/%d != measured %d/%d", overhead, cost, res.Overhead, res.Cost)
	}

	// Report requires allocation.
	q, err := ParseProgram(demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Report(); err == nil {
		t.Error("Report before Allocate should fail")
	}
}

func TestParseStrategy(t *testing.T) {
	names := Strategies()
	if len(names) != 5 {
		t.Fatalf("Strategies() = %v, want 5 entries", names)
	}
	for _, name := range names {
		s, err := ParseStrategy(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.String() != name {
			t.Errorf("ParseStrategy(%q).String() = %q", name, s.String())
		}
	}
	if _, err := ParseStrategy("nonsense"); err == nil || !strings.Contains(err.Error(), "unknown strategy") {
		t.Errorf("ParseStrategy(nonsense) err = %v", err)
	}
}

// TestSharedAnalysisCacheLifetime: two programs share one injected
// analysis cache; each Close removes exactly its own functions, so a
// long-lived service's cache stays bounded (the leak fix end to end).
func TestSharedAnalysisCacheLifetime(t *testing.T) {
	shared := analysis.NewCache()
	run := func() *Program {
		p, err := ParseProgram(demoSrc)
		if err != nil {
			t.Fatal(err)
		}
		p.UseAnalysisCache(shared)
		if err := p.Profile(100); err != nil {
			t.Fatal(err)
		}
		if err := p.Allocate(); err != nil {
			t.Fatal(err)
		}
		if err := p.Place(HierarchicalJump); err != nil {
			t.Fatal(err)
		}
		return p
	}
	a := run()
	lenA := shared.Len()
	if lenA == 0 {
		t.Fatal("shared cache empty after first pipeline")
	}
	b := run()
	if shared.Len() <= lenA {
		t.Fatalf("shared cache did not grow: %d then %d", lenA, shared.Len())
	}
	// a's functions are gone; only b's (an identical program, so the
	// same entry count) remain.
	a.Close()
	if got := shared.Len(); got != lenA {
		t.Fatalf("Len after first Close = %d, want %d", got, lenA)
	}
	b.Close()
	if got := shared.Len(); got != 0 {
		t.Fatalf("Len after both Close = %d, want 0", got)
	}
	// Close on a program-owned cache drops everything too, and is
	// idempotent.
	c, _ := ParseProgram(demoSrc)
	if err := c.Profile(100); err != nil {
		t.Fatal(err)
	}
	if err := c.Allocate(); err != nil {
		t.Fatal(err)
	}
	if err := c.Place(HierarchicalJump); err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close()
	if len(c.IRFuncs()) != len(c.Functions()) {
		t.Error("IRFuncs and Functions disagree on function count")
	}
}

// TestMaxSteps: a tight step budget halts Profile with an error
// instead of letting a long-running program burn unbounded CPU.
func TestMaxSteps(t *testing.T) {
	p, err := ParseProgram(demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	p.MaxSteps = 10
	if err := p.Profile(100); err == nil || !strings.Contains(err.Error(), "step") {
		t.Errorf("Profile with MaxSteps=10 err = %v, want step-limit error", err)
	}
}
